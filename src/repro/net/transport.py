"""Unreliable datagram transport over the simulated underlay.

Routing messages are individually subject to the topology's loss model and
injected outages, and are delivered after one one-way delay (RTT/2). Every
send and every delivery is accounted with the message's compact wire size,
which is what the §6.1 bandwidth comparison measures.

Loss semantics match UDP: a dropped message still costs the sender its
outgoing bytes but the receiver never sees it (the paper notes measured
bandwidth lands slightly *below* theory for exactly this reason).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.net.packet import Message
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.overlay.stats import BandwidthRecorder

__all__ = ["DatagramTransport"]

DeliveryHandler = Callable[[Message, int], None]


class DatagramTransport:  # reprolint: disable=RL002(one shared transport per simulation, not per node)
    """Best-effort message delivery between overlay nodes.

    Parameters
    ----------
    sim:
        The discrete-event simulator supplying the clock.
    topology:
        Underlay answering delay/loss/outage queries.
    rng:
        Random source for loss sampling (deterministic per seed).
    bandwidth:
        Optional byte accounting; ``None`` disables accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        rng: np.random.Generator,
        bandwidth: Optional[BandwidthRecorder] = None,
    ):
        self._sim = sim
        self._topology = topology
        self._rng = rng
        self._bandwidth = bandwidth
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._registered = np.zeros(topology.n, dtype=bool)
        #: Endpoint address -> hosting underlay node. Services (the
        #: membership coordinator) get their own address but share their
        #: host's links, delays, and byte accounting.
        self._host_of: Dict[int, int] = {}
        #: In-flight messages coalesced per (dst, arrival time): one
        #: simulator event delivers the whole bucket, instead of one
        #: heap entry per datagram. Messages append in send order and
        #: deliver in that order, so any pre-existing delivery order is
        #: preserved exactly (ties beyond a bucket share an arrival
        #: instant only on exact float equality, which same-source
        #: same-tick sends produce and distinct delays do not).
        self._pending: Dict[Tuple[int, float], List[Tuple[int, Message, int]]] = {}
        self.sent_count = 0
        self.dropped_count = 0
        self.delivered_count = 0
        #: Diagnostic: datagrams that shared a delivery event with an
        #: earlier one (no heap entry of their own).
        self.coalesced_count = 0

    @property
    def topology(self) -> Topology:
        return self._topology

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: DeliveryHandler) -> None:
        """Attach a delivery handler for ``node_id``."""
        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        if 0 <= node_id < self._registered.shape[0]:
            self._registered[node_id] = True

    def register_endpoint(
        self, address: int, host: int, handler: DeliveryHandler
    ) -> None:
        """Register a service endpoint co-located at underlay node ``host``.

        The endpoint is addressable like a node (``send(..., address,
        ...)``) but its traffic traverses — and is accounted against —
        its host's links: loss, outages, and delay between the endpoint
        and any node are those of the ``host <-> node`` path. This is
        how control-plane services (the in-band membership coordinator)
        share the data plane instead of enjoying out-of-band delivery.
        """
        if not 0 <= host < self._topology.n:
            raise SimulationError(f"endpoint host {host} is not a topology node")
        if address in self._handlers:
            raise SimulationError(f"address {address} already registered")
        self._handlers[address] = handler
        self._host_of[address] = host

    def unregister(self, node_id: int) -> None:
        """Detach ``node_id``; in-flight messages to it are dropped.

        Endpoints keep their host mapping, so one can re-``register`` at
        the same address after an outage window.
        """
        self._handlers.pop(node_id, None)
        if 0 <= node_id < self._registered.shape[0]:
            self._registered[node_id] = False

    def _underlay(self, node_id: int) -> int:
        """The topology node whose links carry ``node_id``'s traffic."""
        return self._host_of.get(node_id, node_id)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._handlers

    def registered_vector(self) -> np.ndarray:
        """Per-node registration mask (read-only; do not mutate).

        A node that tore down its binding (left or crashed) reads False:
        probes and messages to it go unanswered, which is how peers'
        monitors come to detect an overlay-level crash."""
        return self._registered

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg: Message) -> bool:
        """Send ``msg`` from ``src`` to ``dst``.

        Returns True if the message was put in flight (it may still be
        lost), False if it was dropped immediately (link down / loss).
        Self-sends deliver synchronously without any byte accounting.
        """
        now = self._sim.now
        if src == dst:
            handler = self._handlers.get(dst)
            if handler is not None:
                handler(msg, src)
            return True

        size = msg.wire_size()
        src_u = self._underlay(src)
        dst_u = self._underlay(dst)
        if self._bandwidth is not None:
            self._bandwidth.record_out(src_u, msg.kind, size, now)
        self.sent_count += 1

        if not self._topology.packet_delivered(src_u, dst_u, now, self._rng):
            self.dropped_count += 1
            return False

        # Loss is drawn above, at send time and in send order, so
        # coalescing deliveries cannot perturb the RNG stream.
        arrival = now + self._topology.one_way_delay_s(src_u, dst_u)
        key = (dst, arrival)
        bucket = self._pending.get(key)
        if bucket is None:
            self._pending[key] = bucket = []
            self._sim.schedule_at(arrival, self._deliver_bucket, dst, arrival)
        else:
            self.coalesced_count += 1
        bucket.append((src, msg, size))
        return True

    def _deliver_bucket(self, dst: int, arrival: float) -> None:
        """Deliver every message that arrives at ``dst`` at ``arrival``.

        The handler is re-resolved per message: delivering one message
        may tear the destination down (or re-register it), and later
        messages in the bucket must see that, exactly as they would
        have with one event each.
        """
        batch = self._pending.pop((dst, arrival))
        now = self._sim.now
        for src, msg, size in batch:
            handler = self._handlers.get(dst)
            if handler is None:
                self.dropped_count += 1
                continue
            if self._bandwidth is not None:
                self._bandwidth.record_in(self._underlay(dst), msg.kind, size, now)
            self.delivered_count += 1
            handler(msg, src)
