"""Link and node failure injection.

The paper's PlanetLab deployment (§6) experienced a wide mix of link
failures: most nodes saw fewer than 40 concurrent failed links on average,
while a few poorly connected nodes saw ~44 on average with peaks over 120
(Figure 8). We reproduce that environment with an alternating-renewal
outage process per link: outage episodes arrive at a Poisson rate and last
a log-normally distributed time. Per-node "quality classes" set the rates
so that a small minority of nodes is poorly connected.

An :class:`OutageSchedule` is an immutable sorted list of ``[start, end)``
intervals; queries are O(log k) by bisection. A :class:`FailureTable`
aggregates schedules for all links of an overlay and answers vectorized
per-source queries used by the probing fast path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = [
    "NodeClass",
    "NodeClassParams",
    "DEFAULT_CLASS_PARAMS",
    "OutageSchedule",
    "FailureTable",
    "assign_node_classes",
    "build_failure_table",
    "build_partition_table",
    "schedule_from_episodes",
]


class NodeClass(Enum):
    """Connectivity-quality class of a node, mirroring the paper's
    observation that PlanetLab mixes well- and poorly-connected hosts."""

    GOOD = "good"
    MEDIOCRE = "mediocre"
    POOR = "poor"


@dataclass(frozen=True, slots=True)
class NodeClassParams:
    """Failure-process parameters for one node class.

    Attributes
    ----------
    duty_cycle:
        Long-run fraction of time a link is down *due to this endpoint*.
        A link's total downtime duty cycle is approximately the sum of its
        endpoints' duty cycles.
    mean_outage_s:
        Mean duration of one outage episode in seconds.
    sigma_outage:
        Log-normal sigma of the outage duration.
    """

    duty_cycle: float
    mean_outage_s: float
    sigma_outage: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle < 1.0:
            raise TopologyError(f"duty_cycle must be in [0, 1), got {self.duty_cycle}")
        if self.mean_outage_s <= 0:
            raise TopologyError("mean_outage_s must be positive")


#: Calibrated so a 140-node overlay reproduces Figure 8's shape: most
#: nodes < 40 concurrent link failures; ~5% of nodes around 40-60.
DEFAULT_CLASS_PARAMS: Dict[NodeClass, NodeClassParams] = {
    NodeClass.GOOD: NodeClassParams(duty_cycle=0.010, mean_outage_s=60.0),
    NodeClass.MEDIOCRE: NodeClassParams(duty_cycle=0.080, mean_outage_s=90.0),
    NodeClass.POOR: NodeClassParams(duty_cycle=0.300, mean_outage_s=120.0),
}

#: Default class mix (GOOD, MEDIOCRE, POOR).
DEFAULT_CLASS_MIX: Tuple[float, float, float] = (0.80, 0.15, 0.05)


class OutageSchedule:
    """Sorted, non-overlapping ``[start, end)`` outage intervals for a link.

    The empty schedule means "always up".
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Sequence[Tuple[float, float]] = ()):
        merged = _merge_intervals(intervals)
        self._starts = [s for s, _ in merged]
        self._ends = [e for _, e in merged]

    @property
    def intervals(self) -> List[Tuple[float, float]]:
        """The merged outage intervals."""
        return list(zip(self._starts, self._ends))

    def is_down(self, t: float) -> bool:
        """True if the link is in an outage at time ``t``."""
        idx = bisect.bisect_right(self._starts, t) - 1
        return idx >= 0 and t < self._ends[idx]

    def is_up(self, t: float) -> bool:
        return not self.is_down(t)

    def next_transition(self, t: float) -> Optional[float]:
        """Time of the next up/down edge strictly after ``t``, or None."""
        idx = bisect.bisect_right(self._starts, t) - 1
        if idx >= 0 and t < self._ends[idx]:
            return self._ends[idx]
        nxt = bisect.bisect_right(self._starts, t)
        if nxt < len(self._starts):
            return self._starts[nxt]
        return None

    def downtime(self, t0: float, t1: float) -> float:
        """Total outage seconds within ``[t0, t1]``."""
        if t1 < t0:
            raise TopologyError(f"bad window [{t0}, {t1}]")
        total = 0.0
        for s, e in zip(self._starts, self._ends):
            lo = max(s, t0)
            hi = min(e, t1)
            if hi > lo:
                total += hi - lo
        return total

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OutageSchedule {len(self._starts)} intervals>"


def _merge_intervals(
    intervals: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Sort and merge possibly-overlapping intervals; drop empty ones."""
    cleaned = []
    for s, e in intervals:
        if e < s:
            raise TopologyError(f"interval end {e} before start {s}")
        if e > s:
            cleaned.append((float(s), float(e)))
    cleaned.sort()
    merged: List[Tuple[float, float]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def schedule_from_episodes(
    rng: np.random.Generator,
    horizon: float,
    duty_cycle: float,
    mean_outage_s: float,
    sigma: float = 0.8,
) -> OutageSchedule:
    """Draw an alternating-renewal outage schedule over ``[0, horizon]``.

    Episodes arrive Poisson with rate ``duty_cycle / mean_outage_s`` and
    last ``LogNormal`` with the requested mean. Overlapping episodes merge.
    """
    if duty_cycle <= 0.0:
        return OutageSchedule()
    rate = duty_cycle / mean_outage_s
    # Log-normal parameterized to have the requested mean.
    mu = np.log(mean_outage_s) - sigma * sigma / 2.0
    intervals = []
    t = float(rng.exponential(1.0 / rate))
    while t < horizon:
        duration = float(rng.lognormal(mu, sigma))
        intervals.append((t, min(t + duration, horizon)))
        t += duration + float(rng.exponential(1.0 / rate))
    return OutageSchedule(intervals)


def assign_node_classes(
    n: int,
    rng: np.random.Generator,
    mix: Tuple[float, float, float] = DEFAULT_CLASS_MIX,
) -> List[NodeClass]:
    """Randomly assign connectivity classes to ``n`` nodes.

    Guarantees at least one GOOD node, and (for n >= 20) at least one POOR
    node so the Figure 13/14 well-vs-poorly-connected comparison is always
    possible.
    """
    if n <= 0:
        raise TopologyError("n must be positive")
    if abs(sum(mix) - 1.0) > 1e-9:
        raise TopologyError(f"class mix must sum to 1, got {mix}")
    classes = list(
        rng.choice(
            [NodeClass.GOOD, NodeClass.MEDIOCRE, NodeClass.POOR], size=n, p=list(mix)
        )
    )
    if NodeClass.GOOD not in classes:
        classes[0] = NodeClass.GOOD
    if n >= 20 and NodeClass.POOR not in classes:
        classes[-1] = NodeClass.POOR
    return classes


@dataclass(slots=True)
class FailureTable:
    """Outage schedules for every link of an ``n``-node full mesh.

    Only links that have at least one outage are stored; all other links
    are permanently up. Node crash intervals may be layered on top: a
    crashed node brings down all of its links.
    """

    n: int
    link_schedules: Dict[Tuple[int, int], OutageSchedule] = field(default_factory=dict)
    node_schedules: Dict[int, OutageSchedule] = field(default_factory=dict)
    # Per-source index built in __post_init__; declared so slots covers it.
    _by_source: List[List[Tuple[int, OutageSchedule]]] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for (i, j) in self.link_schedules:
            if not (0 <= i < j < self.n):
                raise TopologyError(f"bad link key ({i}, {j}) for n={self.n}")
        for i in self.node_schedules:
            if not 0 <= i < self.n:
                raise TopologyError(f"bad node key {i} for n={self.n}")
        # Per-source index for vectorized queries.
        self._by_source: List[List[Tuple[int, OutageSchedule]]] = [
            [] for _ in range(self.n)
        ]
        for (i, j), sched in self.link_schedules.items():
            self._by_source[i].append((j, sched))
            self._by_source[j].append((i, sched))

    @staticmethod
    def _key(i: int, j: int) -> Tuple[int, int]:
        return (i, j) if i < j else (j, i)

    def node_is_up(self, i: int, t: float) -> bool:
        sched = self.node_schedules.get(i)
        return sched is None or sched.is_up(t)

    def link_is_up(self, i: int, j: int, t: float) -> bool:
        """True if the (bidirectional) link i<->j is usable at time t."""
        if i == j:
            return True
        if not (self.node_is_up(i, t) and self.node_is_up(j, t)):
            return False
        sched = self.link_schedules.get(self._key(i, j))
        return sched is None or sched.is_up(t)

    def up_vector(self, i: int, t: float) -> np.ndarray:
        """Boolean vector ``v`` with ``v[j]`` true iff link i<->j is up.

        ``v[i]`` is always True. Used by the vectorized probing fast path.
        """
        v = np.ones(self.n, dtype=bool)
        if not self.node_is_up(i, t):
            v[:] = False
            v[i] = True
            return v
        for j, sched in self._by_source[i]:
            if sched.is_down(t):
                v[j] = False
        for j, sched in self.node_schedules.items():
            if j != i and sched.is_down(t):
                v[j] = False
        return v

    def concurrent_failures(self, i: int, t: float) -> int:
        """Number of destinations unreachable from ``i`` at time ``t``."""
        return int(self.n - 1 - (self.up_vector(i, t).sum() - 1))


def build_failure_table(
    n: int,
    horizon: float,
    rng: np.random.Generator,
    node_classes: Optional[Sequence[NodeClass]] = None,
    class_params: Optional[Dict[NodeClass, NodeClassParams]] = None,
    base_duty_cycle: float = 0.002,
    base_mean_outage_s: float = 45.0,
) -> FailureTable:
    """Build a failure table whose statistics mirror the paper's Figure 8.

    Each link (i, j) gets an outage process whose duty cycle is the sum of
    a small background term and both endpoints' class terms: outages are
    mostly "caused" by a node's poor access connectivity, which is what
    makes a few nodes see very many concurrent failures.
    """
    if node_classes is None:
        node_classes = assign_node_classes(n, rng)
    if len(node_classes) != n:
        raise TopologyError("node_classes length must equal n")
    params = class_params or DEFAULT_CLASS_PARAMS

    link_schedules: Dict[Tuple[int, int], OutageSchedule] = {}
    for i in range(n):
        for j in range(i + 1, n):
            pi = params[node_classes[i]]
            pj = params[node_classes[j]]
            duty = base_duty_cycle + pi.duty_cycle + pj.duty_cycle
            mean_s = max(pi.mean_outage_s, pj.mean_outage_s, base_mean_outage_s)
            sched = schedule_from_episodes(
                rng, horizon, duty, mean_s, sigma=max(pi.sigma_outage, pj.sigma_outage)
            )
            if sched:
                link_schedules[(i, j)] = sched
    return FailureTable(n=n, link_schedules=link_schedules)


def build_partition_table(
    n: int,
    cuts: Sequence[Tuple[float, float, Sequence[int], Sequence[int]]],
) -> FailureTable:
    """A failure table injecting network partitions.

    Each cut is ``(start, end, side_a, side_b)``: during ``[start, end)``
    every link with one endpoint in ``side_a`` and the other in
    ``side_b`` is down (links within one side stay up). Sides need not
    exhaust the nodes, and multiple cuts may overlap — each cross link
    accumulates the union of its cut windows. The coordinator-failover
    scenarios use this to sever coordinators from node subsets and to
    split the membership plane into conflicting halves.
    """
    windows: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for start, end, side_a, side_b in cuts:
        if end <= start:
            raise TopologyError(f"bad cut window [{start}, {end})")
        a = sorted(set(side_a))
        b = sorted(set(side_b))
        if set(a) & set(b):
            raise TopologyError("cut sides must be disjoint")
        for i in a:
            for j in b:
                if not (0 <= i < n and 0 <= j < n):
                    raise TopologyError(f"cut node out of range for n={n}")
                key = (i, j) if i < j else (j, i)
                windows.setdefault(key, []).append((float(start), float(end)))
    return FailureTable(
        n=n,
        link_schedules={
            key: OutageSchedule(intervals) for key, intervals in windows.items()
        },
    )
