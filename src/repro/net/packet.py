"""Typed in-simulation messages.

Messages carry structured payloads (numpy arrays, entry lists) for speed;
their :meth:`wire_size` reports what the compact §5 wire encoding *would*
occupy, which is what the bandwidth accounting uses. The byte-level codecs
in :mod:`repro.overlay.wire` are exercised separately and round-trip the
same information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay import wire

__all__ = [
    "Message",
    "ProbeRequest",
    "ProbeReply",
    "LinkStateMessage",
    "RecommendationMessage",
    "RelayEnvelope",
    "MembershipUpdate",
    "KIND_PROBE",
    "KIND_LINKSTATE",
    "KIND_RECOMMENDATION",
    "KIND_MEMBERSHIP",
]

KIND_PROBE = "probe"
KIND_LINKSTATE = "ls"
KIND_RECOMMENDATION = "rec"
KIND_MEMBERSHIP = "member"


@dataclass
class Message:
    """Base class for overlay messages."""

    origin: int

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass
class ProbeRequest(Message):
    """A liveness/latency probe (bare header on the wire)."""

    seq: int = 0

    @property
    def kind(self) -> str:
        return KIND_PROBE

    def wire_size(self) -> int:
        return wire.PROBE_BYTES


@dataclass
class ProbeReply(Message):
    """Reply to a probe; echoes the sequence number."""

    seq: int = 0

    @property
    def kind(self) -> str:
        return KIND_PROBE

    def wire_size(self) -> int:
        return wire.PROBE_BYTES


@dataclass
class LinkStateMessage(Message):
    """One node's link-state row (round 1 of the routing protocol).

    Attributes
    ----------
    latency_ms:
        Estimated RTT to each destination; ``inf`` for down links.
    alive:
        Liveness flags per destination.
    loss:
        Loss-rate estimates per destination.
    view_version:
        Membership view version this row is indexed against.
    sec:
        Optional ``Sec`` (second node on best path) identities, present
        only in the multi-hop extension.
    """

    latency_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    alive: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    loss: np.ndarray = field(default_factory=lambda: np.zeros(0))
    view_version: int = 0
    sent_at: float = 0.0
    sec: Optional[np.ndarray] = None
    #: §4.1 footnote 8: when this table was relayed through a temporary
    #: one-hop, the relay's node ID — the rendezvous uses it to route its
    #: recommendations back around the broken direct link.
    relay_via: Optional[int] = None

    @property
    def kind(self) -> str:
        return KIND_LINKSTATE

    def wire_size(self) -> int:
        base = wire.linkstate_message_bytes(
            len(self.latency_ms), multihop=self.sec is not None
        )
        return base + (wire.NODE_ID_BYTES if self.relay_via is not None else 0)


@dataclass
class RecommendationMessage(Message):
    """Round-2 best-one-hop recommendations for one rendezvous client.

    ``entries`` is a list of ``(destination, one_hop)`` node-ID pairs; a
    ``one_hop`` equal to the destination means "use the direct path".
    """

    entries: List[Tuple[int, int]] = field(default_factory=list)
    view_version: int = 0
    sent_at: float = 0.0
    #: §6.2.2 footnote 11: optionally timestamp entries so receivers can
    #: keep the most up-to-date best hop. Adds 2 B per entry on the wire.
    timestamped: bool = False

    @property
    def kind(self) -> str:
        return KIND_RECOMMENDATION

    def wire_size(self) -> int:
        if self.timestamped:
            return (
                wire.HEADER_BYTES
                + wire.TIMESTAMPED_REC_ENTRY_BYTES * len(self.entries)
            )
        return wire.recommendation_message_bytes(len(self.entries))

    def destinations(self) -> List[int]:
        """The destinations this message recommends hops for."""
        return [dst for dst, _ in self.entries]


@dataclass
class RelayEnvelope(Message):
    """§4.1 footnote 8: a message sent via a temporary one-hop relay.

    The relay node unwraps the envelope and forwards ``inner`` to
    ``target``. On the wire the envelope costs the inner message plus a
    2-byte target ID and a 2-byte flags field.
    """

    inner: Optional[Message] = None
    target: int = -1

    @property
    def kind(self) -> str:
        assert self.inner is not None
        return self.inner.kind

    def wire_size(self) -> int:
        assert self.inner is not None
        return self.inner.wire_size() + 2 * wire.NODE_ID_BYTES


@dataclass
class MembershipUpdate(Message):
    """A new membership view pushed by the membership service."""

    version: int = 0
    members: Tuple[int, ...] = ()

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP

    def wire_size(self) -> int:
        return wire.membership_message_bytes(len(self.members))
