"""Typed in-simulation messages.

Messages carry structured payloads (numpy arrays, entry lists) for speed;
their :meth:`wire_size` reports what the compact §5 wire encoding *would*
occupy, which is what the bandwidth accounting uses. The byte-level codecs
in :mod:`repro.overlay.wire` are exercised separately and round-trip the
same information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.overlay import wire

__all__ = [
    "Message",
    "ProbeRequest",
    "ProbeReply",
    "LinkStateMessage",
    "RecommendationMessage",
    "RelayEnvelope",
    "MembershipUpdate",
    "MembershipDelta",
    "MembershipRefresh",
    "MembershipAck",
    "CoordinatorHeartbeat",
    "CoordinatorPull",
    "CoordinatorReplicate",
    "GossipDigest",
    "GossipPull",
    "GossipOps",
    "GossipSnapshot",
    "KIND_PROBE",
    "KIND_LINKSTATE",
    "KIND_RECOMMENDATION",
    "KIND_MEMBERSHIP",
    "KIND_MEMBERSHIP_CTRL",
    "KIND_GOSSIP",
]

KIND_PROBE = "probe"
KIND_LINKSTATE = "ls"
KIND_RECOMMENDATION = "rec"
KIND_MEMBERSHIP = "member"
#: Membership control traffic (refresh heartbeats with their version
#: piggyback). Kept distinct from ``member`` so per-node view-update
#: accounting is not skewed by the coordinator host receiving every
#: overlay member's heartbeats.
KIND_MEMBERSHIP_CTRL = "member-ctl"
#: Coordinator-free membership traffic (digest pushes, anti-entropy
#: pulls, op replays, and snapshots of the gossip plane). One kind for
#: the whole plane so its byte cost is directly comparable against the
#: coordinator plane's ``member`` + ``member-ctl`` total.
KIND_GOSSIP = "gossip"


@dataclass(slots=True)
class Message:
    """Base class for overlay messages."""

    origin: int

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass(slots=True)
class ProbeRequest(Message):
    """A liveness/latency probe (bare header on the wire)."""

    seq: int = 0

    @property
    def kind(self) -> str:
        return KIND_PROBE

    def wire_size(self) -> int:
        return wire.PROBE_BYTES


@dataclass(slots=True)
class ProbeReply(Message):
    """Reply to a probe; echoes the sequence number."""

    seq: int = 0

    @property
    def kind(self) -> str:
        return KIND_PROBE

    def wire_size(self) -> int:
        return wire.PROBE_BYTES


@dataclass(slots=True)
class LinkStateMessage(Message):
    """One node's link-state row (round 1 of the routing protocol).

    Attributes
    ----------
    latency_ms:
        Estimated RTT to each destination; ``inf`` for down links.
    alive:
        Liveness flags per destination.
    loss:
        Loss-rate estimates per destination.
    view_version:
        Membership view version this row is indexed against.
    sec:
        Optional ``Sec`` (second node on best path) identities, present
        only in the multi-hop extension.
    """

    latency_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    alive: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    loss: np.ndarray = field(default_factory=lambda: np.zeros(0))
    view_version: int = 0
    sent_at: float = 0.0
    sec: Optional[np.ndarray] = None
    #: §4.1 footnote 8: when this table was relayed through a temporary
    #: one-hop, the relay's node ID — the rendezvous uses it to route its
    #: recommendations back around the broken direct link.
    relay_via: Optional[int] = None

    @property
    def kind(self) -> str:
        return KIND_LINKSTATE

    def wire_size(self) -> int:
        base = wire.linkstate_message_bytes(
            len(self.latency_ms), multihop=self.sec is not None
        )
        return base + (wire.NODE_ID_BYTES if self.relay_via is not None else 0)


@dataclass(slots=True)
class RecommendationMessage(Message):
    """Round-2 best-one-hop recommendations for one rendezvous client.

    ``entries`` is a list of ``(destination, one_hop)`` node-ID pairs; a
    ``one_hop`` equal to the destination means "use the direct path".
    """

    entries: List[Tuple[int, int]] = field(default_factory=list)
    view_version: int = 0
    sent_at: float = 0.0
    #: §6.2.2 footnote 11: optionally timestamp entries so receivers can
    #: keep the most up-to-date best hop. Adds 2 B per entry on the wire.
    timestamped: bool = False

    @property
    def kind(self) -> str:
        return KIND_RECOMMENDATION

    def wire_size(self) -> int:
        if self.timestamped:
            return (
                wire.HEADER_BYTES
                + wire.TIMESTAMPED_REC_ENTRY_BYTES * len(self.entries)
            )
        return wire.recommendation_message_bytes(len(self.entries))

    def destinations(self) -> List[int]:
        """The destinations this message recommends hops for."""
        return [dst for dst, _ in self.entries]


@dataclass(slots=True)
class RelayEnvelope(Message):
    """§4.1 footnote 8: a message sent via a temporary one-hop relay.

    The relay node unwraps the envelope and forwards ``inner`` to
    ``target``. On the wire the envelope costs the inner message plus a
    2-byte target ID and a 2-byte flags field.
    """

    inner: Optional[Message] = None
    target: int = -1

    @property
    def kind(self) -> str:
        assert self.inner is not None
        return self.inner.kind

    def wire_size(self) -> int:
        assert self.inner is not None
        return self.inner.wire_size() + 2 * wire.NODE_ID_BYTES


@dataclass(slots=True)
class MembershipUpdate(Message):
    """A new full membership view pushed by the membership service.

    With in-band membership this is a real wire message from the
    coordinator endpoint; out-of-band it is only used for its
    :meth:`wire_size` accounting.
    """

    version: int = 0
    members: Tuple[int, ...] = ()
    #: Coordinator epoch (0 = the unreplicated legacy coordinator, which
    #: costs nothing extra on the wire; replicated groups start at 1).
    epoch: int = 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP

    def wire_size(self) -> int:
        base = wire.membership_message_bytes(len(self.members))
        return base + (wire.EPOCH_BYTES if self.epoch else 0)


@dataclass(slots=True)
class MembershipDelta(Message):
    """An incremental membership view update on the overlay wire.

    Carries one coalesced ``(from_version, to_version)`` transition; the
    receiver applies it to the view it holds at exactly ``from_version``
    (the :func:`repro.overlay.wire.encode_view_delta` layout).
    """

    from_version: int = 0
    to_version: int = 0
    joined: Tuple[int, ...] = ()
    left: Tuple[int, ...] = ()
    #: Coordinator epoch; deltas only apply within one epoch.
    epoch: int = 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP

    def wire_size(self) -> int:
        base = wire.membership_delta_message_bytes(len(self.joined), len(self.left))
        return base + (wire.EPOCH_BYTES if self.epoch else 0)


@dataclass(slots=True)
class MembershipRefresh(Message):
    """A member's heartbeat to the in-band membership coordinator.

    ``view_version`` piggybacks the sender's currently-held view version
    (0 = no view yet); the coordinator compares it against the published
    version to detect gaps left by lost view updates and re-send the
    smallest bridging update.
    """

    view_version: int = 0
    #: Epoch of the held view (0 = none / legacy coordinator).
    epoch: int = 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP_CTRL

    def wire_size(self) -> int:
        base = wire.membership_refresh_message_bytes()
        return base + (wire.EPOCH_BYTES if self.epoch else 0)


@dataclass(slots=True)
class MembershipAck(Message):
    """A coordinator's acknowledgement of a member's refresh.

    Only sent by replicated coordinator groups (``num_coordinators > 1``).
    ``leader`` names the coordinator address the member should be talking
    to: the primary acks with its own address, while a backup receiving a
    misdirected refresh acks with a redirect to its believed primary.
    Members use acks (and view pushes) as proof-of-life for failover
    detection.
    """

    epoch: int = 0
    version: int = 0
    leader: int = -1

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP_CTRL

    def wire_size(self) -> int:
        return wire.membership_ack_message_bytes()


@dataclass(slots=True)
class CoordinatorHeartbeat(Message):
    """Primary-to-replica proof of life carrying the log head position."""

    epoch: int = 0
    version: int = 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP_CTRL

    def wire_size(self) -> int:
        return wire.coordinator_sync_message_bytes()


@dataclass(slots=True)
class CoordinatorPull(Message):
    """A replica's request for a full state snapshot from the primary.

    Sent when the replica's mirrored log cannot bridge to the primary's
    advertised ``(epoch, version)`` (lost replication messages, or a
    replica rejoining after a crash).
    """

    epoch: int = 0
    version: int = 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP_CTRL

    def wire_size(self) -> int:
        return wire.coordinator_sync_message_bytes()


@dataclass(slots=True)
class CoordinatorReplicate(Message):
    """Primary-to-replica log replication: one transition or a snapshot.

    A delta replication (``from_version >= 0``) mirrors a single
    published :class:`MembershipDelta`; a snapshot (``from_version < 0``)
    carries the full member set at ``version`` and resets the replica's
    mirror (used at bootstrap, after pulls, and across epoch changes).
    """

    epoch: int = 0
    version: int = 0
    members: Tuple[int, ...] = ()
    from_version: int = -1
    joined: Tuple[int, ...] = ()
    left: Tuple[int, ...] = ()

    @property
    def is_delta(self) -> bool:
        return self.from_version >= 0

    @property
    def kind(self) -> str:
        return KIND_MEMBERSHIP

    def wire_size(self) -> int:
        return wire.coordinator_replicate_message_bytes(
            len(self.members), len(self.joined), len(self.left), self.is_delta
        )


@dataclass(slots=True)
class GossipDigest(Message):
    """A gossip push round's digest of the sender's membership knowledge.

    ``vv`` is the sender's version vector — per op-origin, the highest
    contiguously-applied membership-op sequence — and ``heartbeats`` its
    heartbeat vector (per live member, the highest heartbeat counter
    seen). Receivers compare ``vv`` against their own to decide whether
    to pull missing ops from the sender or push their surplus back.
    """

    vv: Tuple[Tuple[int, int], ...] = ()
    heartbeats: Tuple[Tuple[int, int], ...] = ()

    @property
    def kind(self) -> str:
        return KIND_GOSSIP

    def wire_size(self) -> int:
        return wire.gossip_digest_message_bytes(
            len(self.vv), len(self.heartbeats)
        )


@dataclass(slots=True)
class GossipPull(Message):
    """An anti-entropy pull for membership ops the sender is missing.

    ``ranges`` lists ``(op_origin, have_seq)`` pairs: "send me every op
    you hold from ``op_origin`` after ``have_seq``". An *empty* ranges
    tuple is the bootstrap form — "send me your full resolved state" —
    used by joiners with no membership knowledge at all.
    """

    ranges: Tuple[Tuple[int, int], ...] = ()

    @property
    def kind(self) -> str:
        return KIND_GOSSIP

    def wire_size(self) -> int:
        return wire.gossip_pull_message_bytes(len(self.ranges))


@dataclass(slots=True)
class GossipOps(Message):
    """A replay of membership ops, answering a pull or pushing surplus.

    Each op is ``(origin, seq, action, target, stamp)`` — the
    :func:`repro.overlay.wire.encode_gossip_ops` layout.
    """

    ops: Tuple[Tuple[int, int, int, int, int], ...] = ()

    @property
    def kind(self) -> str:
        return KIND_GOSSIP

    def wire_size(self) -> int:
        return wire.gossip_ops_message_bytes(len(self.ops))


@dataclass(slots=True)
class GossipSnapshot(Message):
    """Full resolved membership state: the gossip plane's gap fallback.

    Sent instead of an op replay when the responder's op log no longer
    retains the requested range (or the range is unreasonably large),
    and to bootstrap joiners. ``records`` carries per-target resolved
    state ``(target, stamp, action, op_origin)`` including tombstones;
    ``vv`` is the responder's version vector, which the receiver adopts
    pointwise-max, and ``heartbeats`` its heartbeat vector.
    """

    vv: Tuple[Tuple[int, int], ...] = ()
    records: Tuple[Tuple[int, int, int, int], ...] = ()
    heartbeats: Tuple[Tuple[int, int], ...] = ()

    @property
    def kind(self) -> str:
        return KIND_GOSSIP

    def wire_size(self) -> int:
        return wire.gossip_snapshot_message_bytes(
            len(self.vv), len(self.records), len(self.heartbeats)
        )
