"""Underlay network model: latency, loss, and failures over time.

A :class:`Topology` answers, for any ordered node pair and virtual time:
is the link up, what is its RTT, and what is its loss probability. It is
the single source of truth consumed by the transport (per-message loss and
delay) and by the link monitor's vectorized probing fast path.

Links are bidirectional with identical cost, per the paper's §3 model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TopologyError
from repro.net.failures import FailureTable
from repro.net.trace import SyntheticTrace

__all__ = ["Topology"]


class Topology:  # reprolint: disable=RL002(one Topology per experiment; holds O(n^2) arrays, not O(n) instances)
    """Full-mesh underlay with optional failure injection.

    Parameters
    ----------
    rtt_ms:
        Symmetric ``(n, n)`` RTT matrix in milliseconds, zero diagonal.
    loss:
        Symmetric ``(n, n)`` per-packet loss probability matrix, or None
        for a lossless network.
    failures:
        Optional :class:`FailureTable`; links in an outage drop all
        packets.
    """

    def __init__(
        self,
        rtt_ms: np.ndarray,
        loss: Optional[np.ndarray] = None,
        failures: Optional[FailureTable] = None,
    ):
        rtt_ms = np.asarray(rtt_ms, dtype=float)
        if rtt_ms.ndim != 2 or rtt_ms.shape[0] != rtt_ms.shape[1]:
            raise TopologyError("rtt_ms must be a square matrix")
        if not np.allclose(rtt_ms, rtt_ms.T):
            raise TopologyError("rtt_ms must be symmetric")
        if np.any(np.diag(rtt_ms) != 0):
            raise TopologyError("rtt_ms diagonal must be zero")
        n = rtt_ms.shape[0]
        off_diag = rtt_ms[~np.eye(n, dtype=bool)]
        if off_diag.size and off_diag.min() <= 0:
            raise TopologyError("off-diagonal RTTs must be positive")

        if loss is None:
            loss = np.zeros_like(rtt_ms)
        loss = np.asarray(loss, dtype=float)
        if loss.shape != rtt_ms.shape:
            raise TopologyError("loss matrix shape must match rtt_ms")
        if np.any(loss < 0) or np.any(loss > 1):
            raise TopologyError("loss entries must be probabilities")

        if failures is not None and failures.n != n:
            raise TopologyError(
                f"failure table is for n={failures.n}, topology has n={n}"
            )

        self._rtt_ms = rtt_ms
        self._loss = loss
        self._failures = failures

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls, trace: SyntheticTrace, failures: Optional[FailureTable] = None
    ) -> "Topology":
        """Build a topology from a synthetic trace snapshot."""
        return cls(trace.rtt_ms, trace.loss, failures)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._rtt_ms.shape[0]

    @property
    def rtt_matrix_ms(self) -> np.ndarray:
        """The static base RTT matrix (read-only view)."""
        v = self._rtt_ms.view()
        v.flags.writeable = False
        return v

    @property
    def failures(self) -> Optional[FailureTable]:
        return self._failures

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def _check_pair(self, i: int, j: int) -> None:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise TopologyError(f"node pair ({i}, {j}) out of range for n={self.n}")

    def rtt_ms(self, i: int, j: int) -> float:
        """Base RTT between i and j in milliseconds."""
        self._check_pair(i, j)
        return float(self._rtt_ms[i, j])

    def one_way_delay_s(self, i: int, j: int) -> float:
        """One-way propagation delay in seconds (RTT / 2)."""
        return self.rtt_ms(i, j) / 2000.0

    def loss_probability(self, i: int, j: int) -> float:
        """Per-packet loss probability on the i->j link (excl. outages)."""
        self._check_pair(i, j)
        return float(self._loss[i, j])

    def link_is_up(self, i: int, j: int, t: float) -> bool:
        """Whether the link is up (not in an injected outage) at time t."""
        self._check_pair(i, j)
        if self._failures is None:
            return True
        return self._failures.link_is_up(i, j, t)

    def packet_delivered(
        self, i: int, j: int, t: float, rng: np.random.Generator
    ) -> bool:
        """Sample whether one packet sent i->j at time ``t`` arrives."""
        if i == j:
            return True
        if not self.link_is_up(i, j, t):
            return False
        p = self._loss[i, j]
        return p <= 0.0 or rng.random() >= p

    # ------------------------------------------------------------------
    # Vector queries (probing fast path)
    # ------------------------------------------------------------------
    def up_vector(self, i: int, t: float) -> np.ndarray:
        """Boolean vector over destinations: link i<->j currently up."""
        self._check_pair(i, i)
        if self._failures is None:
            return np.ones(self.n, dtype=bool)
        return self._failures.up_vector(i, t)

    def rtt_vector_ms(self, i: int) -> np.ndarray:
        """RTT from i to every node (copy)."""
        self._check_pair(i, i)
        return self._rtt_ms[i].copy()

    def loss_vector(self, i: int) -> np.ndarray:
        """Loss probability from i to every node (copy)."""
        self._check_pair(i, i)
        return self._loss[i].copy()

    def concurrent_failures(self, i: int, t: float) -> int:
        """Ground-truth count of destinations unreachable from ``i``."""
        return int(self.n - 1 - (int(self.up_vector(i, t).sum()) - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        failed = "none" if self._failures is None else "injected"
        return f"<Topology n={self.n} failures={failed}>"
