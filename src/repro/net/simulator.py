"""Deterministic discrete-event simulator.

This is the substrate under the overlay: a single-threaded event loop with
a virtual clock. Events are callbacks scheduled at absolute virtual times;
ties are broken by insertion order, so runs are fully deterministic for a
given seed and schedule.

The paper evaluates its system both with an in-system emulation (all nodes
in one process) and a PlanetLab deployment. This simulator plays the role
of the emulation host: overlay nodes schedule probe rounds, routing ticks,
and message deliveries on it.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> _ = sim.schedule(5.0, seen.append, "a")
>>> _ = sim.schedule(1.0, seen.append, "b")
>>> sim.run()
>>> seen
['b', 'a']
>>> sim.now
5.0
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "PeriodicTimer", "Simulator"]


class Event:
    """A scheduled callback. Returned by scheduling calls; use to cancel.

    Attributes
    ----------
    time:
        Absolute virtual time at which the callback fires.
    cancelled:
        True once :meth:`cancel` has been called; cancelled events are
        skipped by the event loop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_in_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._in_queue = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._in_queue:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class PeriodicTimer:
    """A repeating event with fixed period and optional initial phase.

    The timer re-schedules itself after every firing until :meth:`stop`.
    The first firing happens at ``start_time + phase``.
    """

    __slots__ = ("_sim", "_period", "_fn", "_args", "_event", "_stopped")

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        phase: float,
    ):
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if phase < 0:
            raise SimulationError(f"timer phase must be non-negative, got {phase}")
        self._sim = sim
        self._period = period
        self._fn = fn
        self._args = args
        self._stopped = False
        self._event = sim.schedule(phase, self._fire)

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        # Re-schedule first so the callback may stop the timer.
        self._event = self._sim.schedule(self._period, self._fire)
        self._fn(*self._args)

    def stop(self) -> None:
        """Stop the timer; pending firing is cancelled. Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Simulator:  # reprolint: disable=RL002(one Simulator per experiment, not per node; a __dict__ here is immaterial)
    """Single-threaded deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).
    """

    #: Compaction triggers once the queue holds more than this many
    #: cancelled entries *and* they outnumber the live ones. Under churn
    #: (rapid-probe cancellations, stopped timers) dead entries would
    #: otherwise linger until their firing time is reached — at n >= 1000
    #: that is tens of thousands of heap slots of pure garbage.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_run = 0
        self._running = False
        self._cancelled_in_queue = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_run

    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (pre-compaction)."""
        return self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many lazy heap compactions have run (for diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"delay must be finite and >= 0, got {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now or not math.isfinite(time):
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time, next(self._seq), fn, args, sim=self)
        event._in_queue = True
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Cancelled-event bookkeeping / lazy compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue > self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self.compact()

    def _note_popped(self, event: Event) -> None:
        event._in_queue = False
        if event.cancelled:
            self._cancelled_in_queue -= 1

    def compact(self) -> None:
        """Drop all cancelled events from the heap and re-heapify.

        Runs automatically when cancelled entries dominate the queue
        (see :data:`COMPACT_MIN_CANCELLED`); safe to call any time —
        event ordering (time, then insertion sequence) is unaffected.
        """
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    def periodic(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        phase: float = 0.0,
    ) -> PeriodicTimer:
        """Schedule ``fn(*args)`` every ``period`` seconds.

        The first firing happens at ``now + phase``. Returns the timer so
        the caller can stop it.
        """
        return PeriodicTimer(self, period, fn, args, phase)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event. Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self._note_popped(event)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or ``max_events`` is reached)."""
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            remaining = math.inf if max_events is None else max_events
            while remaining > 0 and self.step():
                remaining -= 1
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run all events with ``event.time <= time``, then set now=time.

        Periodic timers make event queues never drain, so experiment
        drivers use this to advance the clock a fixed amount.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} (now is t={self._now})"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    self._note_popped(heapq.heappop(self._queue))
                    continue
                if event.time > time:
                    break
                heapq.heappop(self._queue)
                self._note_popped(event)
                self._now = event.time
                self._events_run += 1
                event.fn(*event.args)
            self._now = time
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.3f} pending={len(self._queue)} "
            f"run={self._events_run}>"
        )
