"""Network substrate: simulator, underlay topology, failures, transport."""

from repro.net.failures import (
    FailureTable,
    NodeClass,
    NodeClassParams,
    OutageSchedule,
    assign_node_classes,
    build_failure_table,
    schedule_from_episodes,
)
from repro.net.packet import (
    LinkStateMessage,
    MembershipUpdate,
    Message,
    ProbeReply,
    ProbeRequest,
    RecommendationMessage,
)
from repro.net.simulator import Event, PeriodicTimer, Simulator
from repro.net.topology import Topology
from repro.net.trace import (
    SyntheticTrace,
    euclidean_2d,
    planetlab_like,
    uniform_random_metric,
)
from repro.net.transport import DatagramTransport

__all__ = [
    "DatagramTransport",
    "Event",
    "FailureTable",
    "LinkStateMessage",
    "MembershipUpdate",
    "Message",
    "NodeClass",
    "NodeClassParams",
    "OutageSchedule",
    "PeriodicTimer",
    "ProbeReply",
    "ProbeRequest",
    "RecommendationMessage",
    "Simulator",
    "SyntheticTrace",
    "Topology",
    "assign_node_classes",
    "build_failure_table",
    "euclidean_2d",
    "planetlab_like",
    "schedule_from_episodes",
    "uniform_random_metric",
]
