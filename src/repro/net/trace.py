"""Synthetic Internet latency traces.

The paper's measurements use two datasets we cannot access: the Stribling
all-pairs-pings matrix over 359 PlanetLab hosts (Figure 1, Nov 2005) and a
live 140-node PlanetLab deployment (March 2008). This module synthesizes
RTT matrices with the structural properties those figures depend on:

* geographic clustering (continental regions with realistic base RTTs),
* per-host access-link penalties with a heavy tail (loaded PlanetLab
  hosts),
* *policy inflation* on a fraction of inter-region paths — circuitous BGP
  routes that make the direct path much slower than geography requires.
  These are what make one-hop detours profitable (Figure 1): an inflated
  direct path can be beaten by relaying through a well-connected host.
* a small population of well-provisioned *hub* hosts whose links are never
  inflated; only detours through such hosts help much, which reproduces
  the paper's observation that ~97% of random intermediaries do not fix a
  high-latency path.

All generators are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = [
    "REGIONS",
    "REGION_WEIGHTS",
    "REGION_BASE_RTT_MS",
    "SyntheticTrace",
    "planetlab_like",
    "euclidean_2d",
    "uniform_random_metric",
]

#: Continental regions used by the geographic model.
REGIONS: Tuple[str, ...] = (
    "na-east",
    "na-west",
    "europe",
    "asia-east",
    "asia-south",
    "s-america",
    "oceania",
    "africa",
)

#: Approximate share of PlanetLab sites per region.
REGION_WEIGHTS: Tuple[float, ...] = (0.25, 0.15, 0.30, 0.15, 0.04, 0.04, 0.04, 0.03)

#: Typical inter-region round-trip times in milliseconds (symmetric).
REGION_BASE_RTT_MS: np.ndarray = np.array(
    [
        #  naE  naW   eu  asE  asS   sa   oc   af
        [30.0, 70, 90, 180, 220, 150, 210, 180],  # na-east
        [70, 30, 150, 130, 230, 190, 160, 250],  # na-west
        [90, 150, 30, 250, 160, 220, 300, 120],  # europe
        [180, 130, 250, 40, 120, 320, 140, 300],  # asia-east
        [220, 230, 160, 120, 40, 350, 220, 260],  # asia-south
        [150, 190, 220, 320, 350, 40, 320, 300],  # s-america
        [210, 160, 300, 140, 220, 320, 30, 350],  # oceania
        [180, 250, 120, 300, 260, 300, 350, 50],  # africa
    ]
)


@dataclass(slots=True)
class SyntheticTrace:
    """A generated latency/loss snapshot for ``n`` hosts.

    Attributes
    ----------
    rtt_ms:
        Symmetric ``(n, n)`` matrix of round-trip times in milliseconds,
        zero diagonal.
    loss:
        Symmetric ``(n, n)`` matrix of per-packet loss probabilities.
    regions:
        Region index per host (into :data:`REGIONS`).
    access_ms:
        Per-host access-link penalty (already folded into ``rtt_ms``).
    is_hub:
        Boolean per host: well-provisioned host whose links were exempt
        from policy inflation.
    inflated:
        Boolean ``(n, n)`` matrix marking which paths were policy-inflated.
    """

    rtt_ms: np.ndarray
    loss: np.ndarray
    regions: np.ndarray
    access_ms: np.ndarray
    is_hub: np.ndarray
    inflated: np.ndarray

    @property
    def n(self) -> int:
        return self.rtt_ms.shape[0]

    def validate(self) -> None:
        """Raise :class:`TopologyError` if any invariant is broken."""
        r = self.rtt_ms
        if r.ndim != 2 or r.shape[0] != r.shape[1]:
            raise TopologyError("rtt_ms must be square")
        if not np.allclose(r, r.T):
            raise TopologyError("rtt_ms must be symmetric")
        if np.any(np.diag(r) != 0):
            raise TopologyError("rtt_ms diagonal must be zero")
        off = r[~np.eye(self.n, dtype=bool)]
        if off.size and off.min() <= 0:
            raise TopologyError("off-diagonal RTTs must be positive")
        if np.any(self.loss < 0) or np.any(self.loss > 1):
            raise TopologyError("loss must be a probability")


def _draw_regions(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.choice(len(REGIONS), size=n, p=np.asarray(REGION_WEIGHTS))


def planetlab_like(
    n: int,
    rng: np.random.Generator,
    corridor_prob: float = 0.30,
    congestion_range: Tuple[float, float] = (0.85, 0.98),
    long_haul_threshold_ms: float = 150.0,
    inflation_range: Tuple[float, float] = (1.8, 4.0),
    hub_fraction: float = 0.02,
    access_mean_ms: float = 32.0,
    heavy_access_fraction: float = 0.12,
    base_loss: float = 0.003,
    lossy_fraction: float = 0.03,
    lossy_loss: float = 0.05,
) -> SyntheticTrace:
    """Generate a PlanetLab-like RTT/loss matrix for ``n`` hosts.

    Policy inflation is modeled at the *corridor* (region-pair) level:
    with probability ``corridor_prob``, a long-haul region pair is
    "congested" and a large fraction (the congestion level) of individual
    paths crossing it are inflated. This correlation is what makes good
    detours scarce, as in the paper's 2005 measurement: a detour must
    dodge the congested corridor *and* go through a lightly loaded host
    with favorable geography — roughly the top few percent of candidates.

    Defaults are calibrated so that, at n = 359, a few percent of host
    pairs exceed 400 ms RTT, the best one-hop rescues roughly half of
    them, and random intermediates almost never do (Figure 1's regime).
    """
    if n < 2:
        raise TopologyError("need at least 2 hosts")
    regions = _draw_regions(n, rng)

    # Per-host access penalty: log-normal with a small heavy tail of
    # overloaded hosts contributing 60-250 ms.
    access = rng.lognormal(np.log(access_mean_ms), 0.6, size=n)
    heavy = rng.random(n) < heavy_access_fraction
    access = np.where(heavy, access + rng.uniform(60.0, 250.0, size=n), access)

    # Hubs: well-provisioned hosts. Their access penalty is small and
    # their links are exempt from policy inflation.
    is_hub = rng.random(n) < hub_fraction
    if not is_hub.any():
        is_hub[int(rng.integers(n))] = True
    access = np.where(is_hub, rng.uniform(1.0, 4.0, size=n), access)

    base = REGION_BASE_RTT_MS[np.ix_(regions, regions)]
    jitter = rng.uniform(0.9, 1.15, size=(n, n))
    jitter = np.triu(jitter, 1)
    jitter = jitter + jitter.T + np.eye(n)
    geo = base * jitter

    # Corridor-level congestion: pick congested long-haul region pairs.
    num_regions = len(REGIONS)
    congestion = np.zeros((num_regions, num_regions))
    for a in range(num_regions):
        for b in range(a + 1, num_regions):
            if REGION_BASE_RTT_MS[a, b] < long_haul_threshold_ms:
                continue
            if rng.random() < corridor_prob:
                level = rng.uniform(*congestion_range)
                congestion[a, b] = congestion[b, a] = level

    # Per-link inflation draw within congested corridors; hubs exempt.
    link_congestion = congestion[np.ix_(regions, regions)]
    infl_mask = rng.random((n, n)) < np.triu(link_congestion, 1)
    infl_mask = infl_mask | infl_mask.T
    infl_mask[is_hub, :] = False
    infl_mask[:, is_hub] = False
    factor = rng.uniform(*inflation_range, size=(n, n))
    factor = np.triu(factor, 1)
    factor = factor + factor.T
    geo = np.where(infl_mask, geo * factor, geo)

    rtt = geo + access[:, None] + access[None, :]
    np.fill_diagonal(rtt, 0.0)
    rtt = (rtt + rtt.T) / 2.0  # enforce exact symmetry

    loss = np.full((n, n), base_loss)
    lossy = rng.random((n, n)) < lossy_fraction
    lossy = np.triu(lossy, 1)
    lossy = lossy | lossy.T
    loss = np.where(lossy, lossy_loss, loss)
    np.fill_diagonal(loss, 0.0)

    trace = SyntheticTrace(
        rtt_ms=rtt,
        loss=loss,
        regions=regions,
        access_ms=access,
        is_hub=is_hub,
        inflated=infl_mask,
    )
    trace.validate()
    return trace


def euclidean_2d(
    n: int,
    rng: np.random.Generator,
    scale_ms: float = 100.0,
    min_rtt_ms: float = 1.0,
) -> SyntheticTrace:
    """Hosts at uniform positions in the unit square; RTT ~ distance.

    A purely metric topology (triangle inequality holds), useful as a
    control: one-hop detours should give almost no improvement here.
    """
    if n < 2:
        raise TopologyError("need at least 2 hosts")
    pts = rng.random((n, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    rtt = np.sqrt((diff**2).sum(axis=2)) * scale_ms + min_rtt_ms
    np.fill_diagonal(rtt, 0.0)
    trace = SyntheticTrace(
        rtt_ms=rtt,
        loss=np.zeros((n, n)),
        regions=np.zeros(n, dtype=int),
        access_ms=np.zeros(n),
        is_hub=np.zeros(n, dtype=bool),
        inflated=np.zeros((n, n), dtype=bool),
    )
    trace.validate()
    return trace


def uniform_random_metric(
    n: int,
    rng: np.random.Generator,
    low_ms: float = 10.0,
    high_ms: float = 500.0,
) -> SyntheticTrace:
    """Independent uniform RTTs (no structure; triangle violations common).

    Useful for property tests of the routing algorithms, where we only
    need *some* symmetric positive cost matrix.
    """
    if n < 2:
        raise TopologyError("need at least 2 hosts")
    r = rng.uniform(low_ms, high_ms, size=(n, n))
    r = np.triu(r, 1)
    rtt = r + r.T
    trace = SyntheticTrace(
        rtt_ms=rtt,
        loss=np.zeros((n, n)),
        regions=np.zeros(n, dtype=int),
        access_ms=np.zeros(n),
        is_hub=np.zeros(n, dtype=bool),
        inflated=np.zeros((n, n), dtype=bool),
    )
    trace.validate()
    return trace
