"""Fault injection plans: coordinator, member, and underlay faults in one trace.

A :class:`FaultPlan` layers correlated faults on top of the existing
failure machinery: coordinator crash/restore and member crash/join/leave
events are scheduled on the overlay's simulator (like
:class:`~repro.workloads.engine.ChurnWorkload` events), while partitions
and node outages compile down to an ordinary
:class:`~repro.net.failures.FailureTable` of
:class:`~repro.net.failures.OutageSchedule` windows — built *before* the
overlay, because outage schedules are immutable topology inputs.

The fault shapes the failover and gossip-membership suites need:

* :func:`crash_coordinator` / :func:`restore_coordinator` — crash-stop a
  coordinator endpoint (timed to land inside an open ``notify_batch_s``
  window when the scenario wants that fault) and optionally bring it
  back later as a resyncing backup.
* :func:`partition` — sever two node sets for a window. Partitioning the
  primary's host from everyone tests graceful degradation (no
  mass-expiry, bounded staleness); partitioning the coordinators from
  *each other* while each side keeps some members forces conflicting
  concurrent views, which the epoch rule must converge after healing.
  Windows for the same side pair that overlap (or touch) are merged at
  construction time, so a plan never compiles two conflicting
  ``OutageSchedule`` windows for one cut.
* :func:`node_outage` — take a node's *links* down for a window without
  crashing its process: the node keeps gossiping into a void and must
  reconcile when connectivity returns. This is the underlay half of a
  correlated-failure trace.
* :func:`fail_node` / :func:`join_node` / :func:`leave_node` and
  :func:`add_churn` — member-level crashes and (re)joins, so one plan
  can combine a :class:`~repro.workloads.trace.ChurnTrace` (e.g. a
  correlated rack crash) with coordinator faults and underlay outages
  under a single deterministic schedule.

Coordinator endpoints share their host node's links, so "partition
coordinator i from members S" is expressed by cutting ``host(i)`` from
``S`` — exactly how the real system would experience it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.net.failures import FailureTable, OutageSchedule, build_partition_table
from repro.overlay.coordination import CoordinatorGroup
from repro.overlay.harness import Overlay
from repro.workloads.trace import (
    ACTION_FAIL,
    ACTION_JOIN,
    ACTION_LEAVE,
    ChurnTrace,
)

__all__ = ["FaultEvent", "MemberEvent", "FaultPlan"]

ACTION_CRASH_COORD = "crash-coordinator"
ACTION_RESTORE_COORD = "restore-coordinator"

_MEMBER_ACTIONS = (ACTION_JOIN, ACTION_LEAVE, ACTION_FAIL)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled coordinator fault."""

    time: float
    action: str
    coordinator: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise WorkloadError("fault event time must be non-negative")
        if self.action not in (ACTION_CRASH_COORD, ACTION_RESTORE_COORD):
            raise WorkloadError(f"unknown fault action {self.action!r}")
        if self.coordinator < 0:
            raise WorkloadError("coordinator index must be non-negative")


@dataclass(frozen=True, slots=True)
class MemberEvent:
    """One scheduled member-level fault (crash, join, or graceful leave)."""

    time: float
    action: str
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise WorkloadError("member event time must be non-negative")
        if self.action not in _MEMBER_ACTIONS:
            raise WorkloadError(f"unknown member action {self.action!r}")
        if self.node < 0:
            raise WorkloadError("node id must be non-negative")


def _canonical_sides(
    side_a: Sequence[int], side_b: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Validate and canonicalize a partition's side pair.

    Sides are deduplicated, sorted, and ordered so the lexicographically
    smaller side comes first — two cuts severing the same pair of sets
    always canonicalize identically, which is what lets overlapping
    windows for the same cut be detected and merged.
    """
    a = tuple(sorted(set(int(i) for i in side_a)))
    b = tuple(sorted(set(int(i) for i in side_b)))
    if not a or not b:
        raise WorkloadError("partition sides must be non-empty")
    if a[0] < 0 or b[0] < 0:
        raise WorkloadError("partition sides must contain node ids >= 0")
    if set(a) & set(b):
        raise WorkloadError("partition sides must be disjoint")
    return (a, b) if a <= b else (b, a)


@dataclass(slots=True)
class FaultPlan:
    """A deterministic schedule of membership-plane and underlay faults.

    Build the plan first, derive its :meth:`failure_table` to construct
    the overlay's topology, then :meth:`install` it on the built overlay
    to schedule the crash/restore/churn events.
    """

    events: List[FaultEvent] = field(default_factory=list)
    #: Member-level crash/join/leave events.
    member_events: List[MemberEvent] = field(default_factory=list)
    #: Partition cuts as ``(start, end, side_a, side_b)`` node-id sets.
    #: Sides are canonicalized and same-pair windows merged on insert.
    cuts: List[Tuple[float, float, Tuple[int, ...], Tuple[int, ...]]] = field(
        default_factory=list
    )
    #: Link-level node outages as ``(start, end, nodes)``.
    node_outages: List[Tuple[float, float, Tuple[int, ...]]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def crash_coordinator(self, time: float, index: int) -> "FaultPlan":
        """Crash-stop coordinator ``index`` at ``time``."""
        self.events.append(FaultEvent(time, ACTION_CRASH_COORD, index))
        return self

    def restore_coordinator(self, time: float, index: int) -> "FaultPlan":
        """Restart coordinator ``index`` (as a backup) at ``time``."""
        self.events.append(FaultEvent(time, ACTION_RESTORE_COORD, index))
        return self

    def fail_node(self, time: float, node: int) -> "FaultPlan":
        """Crash-stop member ``node`` at ``time``."""
        self.member_events.append(MemberEvent(time, ACTION_FAIL, node))
        return self

    def join_node(self, time: float, node: int) -> "FaultPlan":
        """Join (or reboot) member ``node`` at ``time``."""
        self.member_events.append(MemberEvent(time, ACTION_JOIN, node))
        return self

    def leave_node(self, time: float, node: int) -> "FaultPlan":
        """Gracefully depart member ``node`` at ``time``."""
        self.member_events.append(MemberEvent(time, ACTION_LEAVE, node))
        return self

    def add_churn(self, trace: ChurnTrace) -> "FaultPlan":
        """Absorb every event of a :class:`ChurnTrace` into this plan.

        This is how a correlated crash set (e.g.
        :meth:`ChurnTrace.correlated_failure`) combines with coordinator
        faults and underlay outages in one deterministic trace. The
        trace's feasibility was validated on its construction; the
        combined plan is replayed against the overlay's own state at
        install time.
        """
        for ev in trace.events:
            self.member_events.append(MemberEvent(ev.time, ev.action, ev.node))
        return self

    def partition(
        self,
        start: float,
        end: float,
        side_a: Sequence[int],
        side_b: Sequence[int],
    ) -> "FaultPlan":
        """Cut every ``side_a`` <-> ``side_b`` link during ``[start, end)``.

        Sides must be non-empty and disjoint. A window that overlaps (or
        exactly duplicates) an earlier window for the same side pair is
        merged with it instead of being stored twice — the plan's
        ``cuts`` list always holds disjoint windows per canonical pair,
        so it reads back as the schedule that will actually be compiled.
        """
        if end <= start:
            raise WorkloadError(f"bad partition window [{start}, {end})")
        sides = _canonical_sides(side_a, side_b)
        lo, hi = float(start), float(end)
        kept: List[Tuple[float, float, Tuple[int, ...], Tuple[int, ...]]] = []
        for cut in self.cuts:
            c_start, c_end, c_a, c_b = cut
            if (c_a, c_b) == sides and c_start <= hi and lo <= c_end:
                # Overlapping or touching window for the same cut: widen
                # the new window to cover it and drop the old entry.
                lo = min(lo, c_start)
                hi = max(hi, c_end)
            else:
                kept.append(cut)
        kept.append((lo, hi, sides[0], sides[1]))
        self.cuts[:] = kept
        return self

    def node_outage(
        self, start: float, end: float, nodes: Sequence[int]
    ) -> "FaultPlan":
        """Take every link of ``nodes`` down during ``[start, end)``.

        Unlike :meth:`fail_node` the node processes keep running — this
        models a connectivity blackout (access-link cut, rack uplink
        loss), after which the isolated nodes must anti-entropy their
        way back to the converged view.
        """
        if end <= start:
            raise WorkloadError(f"bad outage window [{start}, {end})")
        ids = tuple(sorted(set(int(i) for i in nodes)))
        if not ids:
            raise WorkloadError("node outage needs at least one node")
        if ids[0] < 0:
            raise WorkloadError("node outage ids must be >= 0")
        self.node_outages.append((float(start), float(end), ids))
        return self

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def failure_table(self, n: int) -> FailureTable:
        """The partition cuts and node outages compiled to outage schedules.

        Pass the result to ``build_overlay(..., failures=...)`` (the
        crash/restore/churn events are not part of it — they are
        simulator events installed later).
        """
        table = build_partition_table(n, self.cuts)
        if not self.node_outages:
            return table
        windows: Dict[int, List[Tuple[float, float]]] = {}
        for start, end, ids in self.node_outages:
            for node in ids:
                if not 0 <= node < n:
                    raise WorkloadError(f"outage node {node} out of range for n={n}")
                windows.setdefault(node, []).append((start, end))
        return FailureTable(
            n=n,
            link_schedules=table.link_schedules,
            node_schedules={
                node: OutageSchedule(intervals)
                for node, intervals in sorted(windows.items())
            },
        )

    def install(self, overlay: Overlay) -> None:
        """Schedule every crash/restore/churn event on the overlay's simulator.

        Coordinator events require the overlay to run the replicated
        coordinator plane; a plan holding only member events and outages
        installs onto any membership plane (the gossip scenarios rely on
        this to replay the identical member-level trace on both planes).
        """
        group = overlay.membership
        if self.events and not isinstance(group, CoordinatorGroup):
            raise WorkloadError(
                "coordinator faults need num_coordinators > 1 "
                "(overlay.membership must be a CoordinatorGroup)"
            )
        for ev in sorted(self.events, key=lambda e: (e.time, e.coordinator)):
            assert isinstance(group, CoordinatorGroup)
            if ev.coordinator >= len(group.coordinators):
                raise WorkloadError(
                    f"coordinator {ev.coordinator} does not exist "
                    f"(k={len(group.coordinators)})"
                )
            if ev.time < overlay.sim.now:
                raise WorkloadError(
                    f"fault event at t={ev.time} is in the past"
                )
            if ev.action == ACTION_CRASH_COORD:
                overlay.sim.schedule_at(
                    ev.time, group.crash_coordinator, ev.coordinator
                )
            else:
                overlay.sim.schedule_at(
                    ev.time, group.restore_coordinator, ev.coordinator
                )
        for mev in sorted(self.member_events, key=lambda e: (e.time, e.node)):
            if mev.node >= overlay.n:
                raise WorkloadError(
                    f"member event node {mev.node} out of range (n={overlay.n})"
                )
            if mev.time < overlay.sim.now:
                raise WorkloadError(
                    f"member event at t={mev.time} is in the past"
                )
            if mev.action == ACTION_FAIL:
                overlay.sim.schedule_at(mev.time, overlay.fail_node, mev.node)
            elif mev.action == ACTION_JOIN:
                overlay.sim.schedule_at(mev.time, overlay.join_node, mev.node)
            else:
                overlay.sim.schedule_at(mev.time, overlay.leave_node, mev.node)
