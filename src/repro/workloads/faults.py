"""Membership-plane fault injection (coordinator failover scenarios).

A :class:`FaultPlan` layers coordinator-targeted faults on top of the
existing failure machinery: coordinator crash/restore events are
scheduled on the overlay's simulator (like
:class:`~repro.workloads.engine.ChurnWorkload` events), while partitions
compile down to an ordinary
:class:`~repro.net.failures.FailureTable` of cross-side
:class:`~repro.net.failures.OutageSchedule` windows — built *before* the
overlay, because outage schedules are immutable topology inputs.

The three fault shapes the coordinator-failover suite needs:

* :func:`crash_coordinator` / :func:`restore_coordinator` — crash-stop a
  coordinator endpoint (timed to land inside an open ``notify_batch_s``
  window when the scenario wants that fault) and optionally bring it
  back later as a resyncing backup.
* :func:`partition` — sever two node sets for a window. Partitioning the
  primary's host from everyone tests graceful degradation (no
  mass-expiry, bounded staleness); partitioning the coordinators from
  *each other* while each side keeps some members forces conflicting
  concurrent views, which the epoch rule must converge after healing.

Coordinator endpoints share their host node's links, so "partition
coordinator i from members S" is expressed by cutting ``host(i)`` from
``S`` — exactly how the real system would experience it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.net.failures import FailureTable, build_partition_table
from repro.overlay.coordination import CoordinatorGroup
from repro.overlay.harness import Overlay

__all__ = ["FaultEvent", "FaultPlan"]

ACTION_CRASH_COORD = "crash-coordinator"
ACTION_RESTORE_COORD = "restore-coordinator"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled coordinator fault."""

    time: float
    action: str
    coordinator: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise WorkloadError("fault event time must be non-negative")
        if self.action not in (ACTION_CRASH_COORD, ACTION_RESTORE_COORD):
            raise WorkloadError(f"unknown fault action {self.action!r}")
        if self.coordinator < 0:
            raise WorkloadError("coordinator index must be non-negative")


@dataclass(slots=True)
class FaultPlan:
    """A deterministic schedule of membership-plane faults.

    Build the plan first, derive its :meth:`failure_table` to construct
    the overlay's topology, then :meth:`install` it on the built overlay
    to schedule the crash/restore events.
    """

    events: List[FaultEvent] = field(default_factory=list)
    #: Partition cuts as ``(start, end, side_a, side_b)`` node-id sets.
    cuts: List[Tuple[float, float, Tuple[int, ...], Tuple[int, ...]]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def crash_coordinator(self, time: float, index: int) -> "FaultPlan":
        """Crash-stop coordinator ``index`` at ``time``."""
        self.events.append(FaultEvent(time, ACTION_CRASH_COORD, index))
        return self

    def restore_coordinator(self, time: float, index: int) -> "FaultPlan":
        """Restart coordinator ``index`` (as a backup) at ``time``."""
        self.events.append(FaultEvent(time, ACTION_RESTORE_COORD, index))
        return self

    def partition(
        self,
        start: float,
        end: float,
        side_a: Sequence[int],
        side_b: Sequence[int],
    ) -> "FaultPlan":
        """Cut every ``side_a`` <-> ``side_b`` link during ``[start, end)``."""
        if end <= start:
            raise WorkloadError(f"bad partition window [{start}, {end})")
        self.cuts.append(
            (float(start), float(end), tuple(side_a), tuple(side_b))
        )
        return self

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def failure_table(self, n: int) -> FailureTable:
        """The partition cuts compiled to link outage schedules.

        Pass the result to ``build_overlay(..., failures=...)`` (the
        crash/restore events are not part of it — they are simulator
        events installed later).
        """
        return build_partition_table(n, self.cuts)

    def install(self, overlay: Overlay) -> None:
        """Schedule every crash/restore event on the overlay's simulator."""
        group = overlay.membership
        if not isinstance(group, CoordinatorGroup):
            raise WorkloadError(
                "coordinator faults need num_coordinators > 1 "
                "(overlay.membership must be a CoordinatorGroup)"
            )
        for ev in sorted(self.events, key=lambda e: (e.time, e.coordinator)):
            if ev.coordinator >= len(group.coordinators):
                raise WorkloadError(
                    f"coordinator {ev.coordinator} does not exist "
                    f"(k={len(group.coordinators)})"
                )
            if ev.time < overlay.sim.now:
                raise WorkloadError(
                    f"fault event at t={ev.time} is in the past"
                )
            if ev.action == ACTION_CRASH_COORD:
                overlay.sim.schedule_at(
                    ev.time, group.crash_coordinator, ev.coordinator
                )
            else:
                overlay.sim.schedule_at(
                    ev.time, group.restore_coordinator, ev.coordinator
                )
