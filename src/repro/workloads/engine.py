"""The churn workload engine: replay a :class:`ChurnTrace` on an overlay.

The engine schedules every trace event on the overlay's own simulator, so
churn is just more events in the same deterministic event loop — a run is
reproducible bit-for-bit from ``(overlay seed, trace)``. It also attaches
the overlay's :class:`~repro.overlay.stats.DisruptionRecorder` sampling
and marks each mass-failure instant on it so recovery times can be read
off afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.overlay.harness import Overlay
from repro.overlay.stats import CounterSet, DisruptionRecorder
from repro.workloads.trace import (
    ACTION_JOIN,
    ACTION_LEAVE,
    ChurnEvent,
    ChurnTrace,
)

__all__ = ["ChurnWorkload", "run_churn_workload"]


class ChurnWorkload:
    """Drives one :class:`ChurnTrace` against one running :class:`Overlay`.

    Usage::

        overlay = build_overlay(trace=net_trace, rng=rng,
                                active_members=churn.initial_active)
        workload = ChurnWorkload(overlay, churn)
        workload.install()
        workload.run(settle_s=120.0)
        recorder = workload.recorder   # disruption / recovery stats

    ``install`` may only be called once, before any trace event is due.
    """

    def __init__(
        self,
        overlay: Overlay,
        trace: ChurnTrace,
        sample_period_s: float = 5.0,
    ):
        if trace.n != overlay.n:
            raise WorkloadError(
                f"trace is for n={trace.n}, overlay has n={overlay.n}"
            )
        if set(trace.initial_active) != overlay.active:
            raise WorkloadError(
                "overlay active set does not match trace.initial_active; "
                "build the overlay with active_members=trace.initial_active"
            )
        self.overlay = overlay
        self.trace = trace
        self._sample_period_s = sample_period_s
        self._installed = False
        self.counters = CounterSet()
        #: Events actually applied so far, as ``(time, action, node)``.
        self.applied: List[Tuple[float, str, int]] = []
        self.recorder: Optional[DisruptionRecorder] = None

    # ------------------------------------------------------------------
    # Setup / driving
    # ------------------------------------------------------------------
    def install(self) -> DisruptionRecorder:
        """Schedule every trace event and start disruption sampling."""
        if self._installed:
            raise WorkloadError("workload already installed")
        sim = self.overlay.sim
        if self.trace.events and self.trace.events[0].time < sim.now:
            raise WorkloadError(
                f"first trace event at t={self.trace.events[0].time} is in "
                f"the past (now t={sim.now})"
            )
        self._installed = True
        self.recorder = (
            self.overlay.disruption
            if self.overlay.disruption is not None
            else self.overlay.attach_disruption(self._sample_period_s)
        )
        for ev in self.trace.events:
            sim.schedule_at(ev.time, self._apply, ev)
        return self.recorder

    def run(self, settle_s: float = 0.0) -> None:
        """Advance to the trace horizon plus ``settle_s`` of quiet time.

        The settle window is where recovery is observed: detection takes
        up to a probing interval and route repair up to two routing
        intervals, so give it a few minutes after the last event.
        """
        if not self._installed:
            raise WorkloadError("call install() before run()")
        self.overlay.sim.run_until(self.trace.duration_s + settle_s)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, ev: ChurnEvent) -> None:
        if ev.action == ACTION_JOIN:
            self.overlay.join_node(ev.node)
        elif ev.action == ACTION_LEAVE:
            self.overlay.leave_node(ev.node)
        else:
            # Mark each distinct mass-failure instant once, so recovery
            # queries know where to measure from.
            assert self.recorder is not None
            marks = self.recorder.marks
            if not marks or marks[-1][1] != ev.time:
                self.recorder.mark("mass-failure", ev.time)
            self.overlay.fail_node(ev.node)
        self.counters.incr(ev.action)
        self.applied.append((ev.time, ev.action, ev.node))


def run_churn_workload(
    overlay: Overlay,
    trace: ChurnTrace,
    settle_s: float = 180.0,
    sample_period_s: float = 5.0,
) -> ChurnWorkload:
    """Install ``trace`` on ``overlay``, run it to completion, and return
    the finished workload (stats via ``workload.recorder``)."""
    workload = ChurnWorkload(overlay, trace, sample_period_s=sample_period_s)
    workload.install()
    workload.run(settle_s=settle_s)
    return workload
