"""Dynamic-membership workloads for the overlay (churn engine).

The paper's §5 membership service supports joins, leaves, and refresh
expiry, but the original evaluation (§6) runs on an essentially static
population. This package exercises the *dynamic* side at scale: it
drives scheduled membership events — sustained churn, coordinated mass
failures, flash-crowd join bursts — against a running
:class:`~repro.overlay.harness.Overlay`, entirely through the
deterministic discrete-event :class:`~repro.net.simulator.Simulator`, so
every run is reproducible from its seeds.

Layout
------
:mod:`repro.workloads.trace`
    :class:`ChurnTrace` — a materialized, validated schedule of
    :class:`ChurnEvent` s (who joins/leaves/crashes, and when), plus the
    three generator families: ``poisson`` (sustained churn with a
    configurable crash fraction), ``mass_failure`` (fail a fraction of
    the overlay at one instant), and ``flash_crowd`` (a join burst).
    Traces are generated ahead of the run so two router kinds can replay
    *identical* churn.

:mod:`repro.workloads.engine`
    :class:`ChurnWorkload` — binds a trace to an overlay: schedules each
    event on the simulator, applies it through the overlay's lifecycle
    API (``join_node`` / ``leave_node`` / ``fail_node``), and wires up
    the :class:`~repro.overlay.stats.DisruptionRecorder` that measures
    per-pair route availability, disruption durations, and
    time-to-recover across view transitions.

Semantics worth knowing
-----------------------
* A **leave** is graceful: the membership service bumps the view at
  once, and the node's timers and transport binding are torn down.
* A **fail** (crash) is silent: peers must detect it by probing, and the
  membership service only learns via refresh expiry — exactly the §5
  division of labor between failover and membership.
* Crashed nodes may **reboot**: a later join of the same ID is valid.
  If the crashed entry has not yet refresh-expired, the membership
  service evicts it so the re-join is clean (``evict``); after expiry
  the node simply joins again.
* Disruption is judged against **ground truth**: a pair counts as
  disrupted while the source's chosen route does not actually work on
  the current underlay (e.g. it still points through a crashed node).

Quick start::

    from repro.overlay.harness import build_overlay
    from repro.workloads import ChurnTrace, run_churn_workload

    churn = ChurnTrace.mass_failure(n=64, fraction=0.25, at_s=300.0,
                                    duration_s=600.0, seed=7)
    overlay = build_overlay(n=64, active_members=churn.initial_active)
    workload = run_churn_workload(overlay, churn, settle_s=180.0)
    print(workload.recorder.recovery_time_after(300.0))

The `churn` CLI subcommand (``python -m repro churn``) and
:mod:`repro.experiments.churn` build the paper-style results tables on
top of these pieces.
"""

from repro.workloads.engine import ChurnWorkload, run_churn_workload
from repro.workloads.trace import (
    ACTION_FAIL,
    ACTION_JOIN,
    ACTION_LEAVE,
    ChurnEvent,
    ChurnTrace,
)

__all__ = [
    "ACTION_FAIL",
    "ACTION_JOIN",
    "ACTION_LEAVE",
    "ChurnEvent",
    "ChurnTrace",
    "ChurnWorkload",
    "run_churn_workload",
]
