"""Deterministic churn traces: who joins, leaves, or crashes, and when.

A :class:`ChurnTrace` is a fully materialized schedule of membership
events — every event names a concrete node and an absolute virtual time —
generated ahead of the run from a seed. Materializing the trace (rather
than sampling choices while the simulation runs) is what makes the §6
comparison "quorum vs. full mesh under *identical* churn" literal: both
overlays replay the exact same event list, and a trace can be printed,
diffed, or persisted alongside the results it produced.

Three generator families cover the scenario space the Chord-style churn
literature evaluates:

* :meth:`ChurnTrace.poisson` — sustained churn: a Poisson process of
  membership events; each departure is a graceful leave or an abrupt
  crash (``crash_fraction``), each arrival restarts a standby node.
* :meth:`ChurnTrace.mass_failure` — fail a fraction ``p`` of the overlay
  at one instant and watch recovery.
* :meth:`ChurnTrace.flash_crowd` — a burst of joins inside a few
  seconds, the "everyone shows up at once" membership transient.

* :meth:`ChurnTrace.crash_reboot` — crash a set of nodes, then have the
  same nodes rejoin later in the same trace (a reboot): the membership
  service evicts the stale crashed entry (or has already expired it) so
  the re-``join`` is clean.

* :meth:`ChurnTrace.correlated_failure` — crash whole *groups* of nodes
  near-simultaneously (a rack power loss, an AS-level outage): failures
  in deployed systems are correlated, not independent, and correlated
  loss is what stresses epidemic dissemination hardest because an entire
  neighborhood of gossip peers disappears at once.
* :meth:`ChurnTrace.poisson_diurnal` — Poisson churn whose rate follows
  a diurnal (cosine) profile, the day/night load shape measurement
  studies report for deployed peer-to-peer systems.

Feasibility (joins only of standby *or* previously crashed nodes,
departures only of active nodes, never fewer than ``min_active``
members) is validated on construction by replaying the events
symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "ACTION_JOIN",
    "ACTION_LEAVE",
    "ACTION_FAIL",
    "ChurnEvent",
    "ChurnTrace",
]

ACTION_JOIN = "join"
ACTION_LEAVE = "leave"
ACTION_FAIL = "fail"

_ACTIONS = (ACTION_JOIN, ACTION_LEAVE, ACTION_FAIL)


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event: ``node`` does ``action`` at virtual ``time``."""

    time: float
    action: str
    node: int

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise WorkloadError(f"unknown churn action {self.action!r}")
        if self.time < 0:
            raise WorkloadError(f"event time must be >= 0, got {self.time}")
        if self.node < 0:
            raise WorkloadError(f"node id must be >= 0, got {self.node}")


@dataclass(frozen=True)
class ChurnTrace:
    """An immutable, validated schedule of membership events.

    Attributes
    ----------
    n:
        Underlay size; node ids are ``0..n-1``.
    initial_active:
        Sorted node ids active at t=0 (``build_overlay``'s
        ``active_members``).
    events:
        Events sorted by time (ties keep generation order).
    duration_s:
        Nominal trace horizon; all events land strictly inside it.
    """

    n: int
    initial_active: Tuple[int, ...]
    events: Tuple[ChurnEvent, ...]
    duration_s: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise WorkloadError("trace needs n >= 1")
        if self.duration_s <= 0:
            raise WorkloadError("trace duration must be positive")
        if tuple(sorted(set(self.initial_active))) != self.initial_active:
            raise WorkloadError("initial_active must be sorted and unique")
        ids = set(range(self.n))
        if not set(self.initial_active) <= ids:
            raise WorkloadError("initial_active must be underlay indices")
        last_t = 0.0
        active: Set[int] = set(self.initial_active)
        standby: Set[int] = ids - active
        crashed: Set[int] = set()
        for ev in self.events:
            if ev.time < last_t:
                raise WorkloadError("events must be sorted by time")
            if ev.time >= self.duration_s:
                raise WorkloadError(
                    f"event at t={ev.time} outside duration {self.duration_s}"
                )
            last_t = ev.time
            if ev.node not in ids:
                raise WorkloadError(f"event node {ev.node} outside underlay")
            if ev.action == ACTION_JOIN:
                if ev.node not in standby and ev.node not in crashed:
                    raise WorkloadError(
                        f"join of node {ev.node} which is neither standby "
                        "nor crashed"
                    )
                standby.discard(ev.node)
                # A crashed node rejoining models a reboot; the harness
                # evicts its stale membership entry if refresh expiry
                # has not already removed it.
                crashed.discard(ev.node)
                active.add(ev.node)
            else:
                if ev.node not in active:
                    raise WorkloadError(
                        f"{ev.action} of node {ev.node} which is not active"
                    )
                active.discard(ev.node)
                if ev.action == ACTION_LEAVE:
                    standby.add(ev.node)
                else:
                    crashed.add(ev.node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.events)

    def count(self, action: str) -> int:
        """Number of events with the given action."""
        return sum(1 for ev in self.events if ev.action == action)

    def fail_times(self) -> Tuple[float, ...]:
        """Distinct times at which at least one node crashes."""
        seen: List[float] = []
        for ev in self.events:
            if ev.action == ACTION_FAIL and (not seen or seen[-1] != ev.time):
                seen.append(ev.time)
        return tuple(seen)

    def active_at_end(self) -> Tuple[int, ...]:
        """Node ids active after the last event."""
        active = set(self.initial_active)
        for ev in self.events:
            if ev.action == ACTION_JOIN:
                active.add(ev.node)
            else:
                active.discard(ev.node)
        return tuple(sorted(active))

    def describe(self) -> str:
        return (
            f"ChurnTrace(n={self.n}, active0={len(self.initial_active)}, "
            f"joins={self.count(ACTION_JOIN)}, leaves={self.count(ACTION_LEAVE)}, "
            f"fails={self.count(ACTION_FAIL)}, duration={self.duration_s:g}s)"
        )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @staticmethod
    def poisson(
        n: int,
        rate_per_s: float,
        duration_s: float,
        seed: int,
        active_fraction: float = 0.75,
        crash_fraction: float = 0.5,
        min_active: int = 8,
        warmup_s: float = 0.0,
    ) -> "ChurnTrace":
        """Sustained churn: membership events as a Poisson process.

        ``rate_per_s`` is the overall event rate; each event is a join
        (from the standby pool) or a departure (of a uniformly random
        active node) with equal probability while both are possible.
        Departures crash with probability ``crash_fraction`` and leave
        gracefully otherwise. No events land before ``warmup_s``, so the
        bootstrap population can converge first.
        """
        if rate_per_s <= 0:
            raise WorkloadError("rate_per_s must be positive")
        if not 0.0 <= crash_fraction <= 1.0:
            raise WorkloadError("crash_fraction must be in [0, 1]")
        if not 0.0 < active_fraction <= 1.0:
            raise WorkloadError("active_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        k = max(min(n, min_active), int(round(n * active_fraction)))
        initial = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
        active = set(initial)
        standby = sorted(set(range(n)) - active)
        events: List[ChurnEvent] = []
        t = warmup_s + float(rng.exponential(1.0 / rate_per_s))
        while t < duration_s:
            can_join = bool(standby)
            can_depart = len(active) > min_active
            if not can_join and not can_depart:
                break
            if can_join and (not can_depart or rng.random() < 0.5):
                node = standby.pop(int(rng.integers(len(standby))))
                events.append(ChurnEvent(time=t, action=ACTION_JOIN, node=node))
                active.add(node)
            else:
                pool = sorted(active)
                node = pool[int(rng.integers(len(pool)))]
                active.discard(node)
                if rng.random() < crash_fraction:
                    events.append(ChurnEvent(time=t, action=ACTION_FAIL, node=node))
                else:
                    events.append(ChurnEvent(time=t, action=ACTION_LEAVE, node=node))
                    standby.append(node)
                    standby.sort()
            t += float(rng.exponential(1.0 / rate_per_s))
        return ChurnTrace(
            n=n,
            initial_active=initial,
            events=tuple(events),
            duration_s=duration_s,
        )

    @staticmethod
    def mass_failure(
        n: int,
        fraction: float,
        at_s: float,
        duration_s: float,
        seed: int,
    ) -> "ChurnTrace":
        """Crash ``fraction`` of the (fully active) overlay at ``at_s``."""
        if not 0.0 < fraction < 1.0:
            raise WorkloadError("fraction must be in (0, 1)")
        if not 0.0 <= at_s < duration_s:
            raise WorkloadError("mass-failure instant must lie inside the trace")
        rng = np.random.default_rng(seed)
        k = int(round(fraction * n))
        if k < 1:
            raise WorkloadError(f"fraction {fraction} fails no nodes at n={n}")
        if n - k < 4:
            raise WorkloadError("mass failure would leave fewer than 4 nodes")
        failed = sorted(rng.choice(n, size=k, replace=False).tolist())
        events = tuple(
            ChurnEvent(time=at_s, action=ACTION_FAIL, node=node) for node in failed
        )
        return ChurnTrace(
            n=n,
            initial_active=tuple(range(n)),
            events=events,
            duration_s=duration_s,
        )

    @staticmethod
    def crash_reboot(
        n: int,
        fraction: float,
        crash_at_s: float,
        reboot_at_s: float,
        duration_s: float,
        seed: int,
    ) -> "ChurnTrace":
        """Crash ``fraction`` of the overlay, then reboot the same nodes.

        The crashed nodes rejoin at ``reboot_at_s`` — within the same
        trace — exercising the membership service's reboot path: a
        crashed entry that has not yet refresh-expired is evicted so the
        re-join is clean.
        """
        if not 0.0 < fraction < 1.0:
            raise WorkloadError("fraction must be in (0, 1)")
        if not 0.0 <= crash_at_s < reboot_at_s < duration_s:
            raise WorkloadError("need crash_at_s < reboot_at_s < duration_s")
        rng = np.random.default_rng(seed)
        k = int(round(fraction * n))
        if k < 1:
            raise WorkloadError(f"fraction {fraction} crashes no nodes at n={n}")
        if n - k < 4:
            raise WorkloadError("crash would leave fewer than 4 nodes")
        failed = sorted(rng.choice(n, size=k, replace=False).tolist())
        events = tuple(
            ChurnEvent(time=crash_at_s, action=ACTION_FAIL, node=node)
            for node in failed
        ) + tuple(
            ChurnEvent(time=reboot_at_s, action=ACTION_JOIN, node=node)
            for node in failed
        )
        return ChurnTrace(
            n=n,
            initial_active=tuple(range(n)),
            events=events,
            duration_s=duration_s,
        )

    @staticmethod
    def correlated_failure(
        n: int,
        group_size: int,
        groups_to_fail: int,
        crash_at_s: float,
        duration_s: float,
        seed: int,
        reboot_at_s: float | None = None,
        spread_s: float = 2.0,
    ) -> "ChurnTrace":
        """Crash whole node groups (racks / ASes) near-simultaneously.

        Nodes ``0..n-1`` are partitioned into contiguous groups of
        ``group_size`` (the last group may be smaller); the trace crashes
        ``groups_to_fail`` uniformly chosen groups, every member of a
        chosen group within ``spread_s`` seconds of ``crash_at_s``. If
        ``reboot_at_s`` is given, the same nodes rejoin around it —
        rack power restored. Contiguous grouping matches the harness's
        convention that nearby ids share infrastructure (coordinator
        hosts are spread as ``(i*n)//k`` for exactly this reason).
        """
        if group_size < 1:
            raise WorkloadError("group_size must be >= 1")
        if spread_s < 0:
            raise WorkloadError("spread_s must be non-negative")
        num_groups = (n + group_size - 1) // group_size
        if not 1 <= groups_to_fail < num_groups:
            raise WorkloadError(
                f"groups_to_fail must be in [1, {num_groups}) for "
                f"n={n}, group_size={group_size}"
            )
        if not 0.0 <= crash_at_s or crash_at_s + spread_s >= duration_s:
            raise WorkloadError("crash burst must land inside the trace")
        if reboot_at_s is not None and not (
            crash_at_s + spread_s < reboot_at_s
            and reboot_at_s + spread_s < duration_s
        ):
            raise WorkloadError(
                "reboot burst must start after the crash burst and land "
                "inside the trace"
            )
        rng = np.random.default_rng(seed)
        chosen = sorted(
            rng.choice(num_groups, size=groups_to_fail, replace=False).tolist()
        )
        failed = sorted(
            node
            for g in chosen
            for node in range(g * group_size, min((g + 1) * group_size, n))
        )
        if n - len(failed) < 4:
            raise WorkloadError("correlated failure would leave fewer than 4 nodes")
        crash_offsets = rng.uniform(0.0, spread_s, size=len(failed))
        events = [
            ChurnEvent(time=crash_at_s + float(off), action=ACTION_FAIL, node=node)
            for node, off in zip(failed, crash_offsets)
        ]
        if reboot_at_s is not None:
            reboot_offsets = rng.uniform(0.0, spread_s, size=len(failed))
            events.extend(
                ChurnEvent(
                    time=reboot_at_s + float(off), action=ACTION_JOIN, node=node
                )
                for node, off in zip(failed, reboot_offsets)
            )
        events.sort(key=lambda ev: ev.time)
        return ChurnTrace(
            n=n,
            initial_active=tuple(range(n)),
            events=tuple(events),
            duration_s=duration_s,
        )

    @staticmethod
    def poisson_diurnal(
        n: int,
        peak_rate_per_s: float,
        duration_s: float,
        seed: int,
        period_s: float,
        floor_fraction: float = 0.2,
        active_fraction: float = 0.75,
        crash_fraction: float = 0.5,
        min_active: int = 8,
        warmup_s: float = 0.0,
    ) -> "ChurnTrace":
        """Poisson churn modulated by a diurnal (cosine) rate profile.

        The instantaneous event rate is::

            rate(t) = peak * (floor + (1 - floor) * (1 - cos(2*pi*t/T)) / 2)

        i.e. it dips to ``floor_fraction * peak`` at ``t = 0, T, 2T, ...``
        and peaks halfway through each period — the day/night shape of
        measured peer-to-peer session traces. Events are drawn by
        Lewis-Shedler thinning of a homogeneous ``peak_rate_per_s``
        process; join/leave/crash mechanics match :meth:`poisson`.
        """
        if peak_rate_per_s <= 0:
            raise WorkloadError("peak_rate_per_s must be positive")
        if period_s <= 0:
            raise WorkloadError("period_s must be positive")
        if not 0.0 <= floor_fraction <= 1.0:
            raise WorkloadError("floor_fraction must be in [0, 1]")
        if not 0.0 <= crash_fraction <= 1.0:
            raise WorkloadError("crash_fraction must be in [0, 1]")
        if not 0.0 < active_fraction <= 1.0:
            raise WorkloadError("active_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        k = max(min(n, min_active), int(round(n * active_fraction)))
        initial = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
        active = set(initial)
        standby = sorted(set(range(n)) - active)
        events: List[ChurnEvent] = []
        two_pi = 2.0 * np.pi
        t = warmup_s + float(rng.exponential(1.0 / peak_rate_per_s))
        while t < duration_s:
            # Thinning: accept this candidate with probability
            # rate(t) / peak, which is the bracket of the profile above.
            profile = floor_fraction + (1.0 - floor_fraction) * 0.5 * (
                1.0 - float(np.cos(two_pi * t / period_s))
            )
            if rng.random() < profile:
                can_join = bool(standby)
                can_depart = len(active) > min_active
                if not can_join and not can_depart:
                    break
                if can_join and (not can_depart or rng.random() < 0.5):
                    node = standby.pop(int(rng.integers(len(standby))))
                    events.append(ChurnEvent(time=t, action=ACTION_JOIN, node=node))
                    active.add(node)
                else:
                    pool = sorted(active)
                    node = pool[int(rng.integers(len(pool)))]
                    active.discard(node)
                    if rng.random() < crash_fraction:
                        events.append(
                            ChurnEvent(time=t, action=ACTION_FAIL, node=node)
                        )
                    else:
                        events.append(
                            ChurnEvent(time=t, action=ACTION_LEAVE, node=node)
                        )
                        standby.append(node)
                        standby.sort()
            t += float(rng.exponential(1.0 / peak_rate_per_s))
        return ChurnTrace(
            n=n,
            initial_active=initial,
            events=tuple(events),
            duration_s=duration_s,
        )

    @staticmethod
    def flash_crowd(
        n: int,
        count: int,
        at_s: float,
        duration_s: float,
        seed: int,
        spread_s: float = 5.0,
    ) -> "ChurnTrace":
        """A join burst: ``count`` standby nodes arrive within ``spread_s``."""
        if count < 1 or count >= n:
            raise WorkloadError("flash crowd count must be in [1, n)")
        if spread_s < 0:
            raise WorkloadError("spread_s must be non-negative")
        if not 0.0 <= at_s or at_s + spread_s >= duration_s:
            raise WorkloadError("flash crowd must land inside the trace")
        rng = np.random.default_rng(seed)
        joiners = sorted(rng.choice(n, size=count, replace=False).tolist())
        offsets = np.sort(rng.uniform(0.0, spread_s, size=count))
        events = tuple(
            ChurnEvent(time=at_s + float(off), action=ACTION_JOIN, node=node)
            for node, off in zip(joiners, offsets)
        )
        return ChurnTrace(
            n=n,
            initial_active=tuple(sorted(set(range(n)) - set(joiners))),
            events=events,
            duration_s=duration_s,
        )
