"""Exception hierarchy for the overlay-routing reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Modules raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class TopologyError(ReproError):
    """A topology matrix or failure schedule is malformed."""


class QuorumError(ReproError):
    """A quorum system construction or query is invalid."""


class MembershipError(ReproError):
    """A membership operation (join/leave/view) is invalid."""


class RoutingError(ReproError):
    """A routing-layer operation failed (unknown destination, no route)."""


class WireFormatError(ReproError):
    """A message could not be encoded to or decoded from its wire format."""


class WorkloadError(ReproError):
    """A churn trace or workload is malformed or infeasible."""
